//! End-to-end integration tests: the full pipeline (localize → reduce →
//! count / test / enumerate) cross-checked against the naive oracle on a
//! corpus of queries covering every normal-form branch, over randomized
//! structures from several degree classes.

use lowdeg_core::enumerate::SkipMode;
use lowdeg_core::Engine;
use lowdeg_gen::{ColoredGraphSpec, DegreeClass};
use lowdeg_index::Epsilon;
use lowdeg_logic::eval::{answers_naive, model_check_naive};
use lowdeg_logic::parse_query;
use lowdeg_storage::{Node, Structure};
use std::collections::BTreeSet;

/// The query corpus: every supported normal-form shape.
const CORPUS: &[&str] = &[
    // quantifier-free, the running example and variants
    "B(x) & R(y) & !E(x, y)",
    "B(x) & !R(x)",
    "B(x) & R(y) & G(z) & !E(x, y) & !E(y, z) & !E(x, z)",
    "(B(x) | G(x)) & R(y) & !E(x, y)",
    "B(x) & R(y) & x != y",
    // distance guards
    "B(x) & R(y) & dist(x, y) > 2",
    "B(x) & R(y) & dist(x, y) <= 2",
    // existential quantification (connected)
    "exists z. E(x, z) & E(z, y)",
    "exists z. E(x, z) & R(z)",
    "exists z w. E(x, z) & E(z, w) & B(w)",
    // universal quantification via duality
    "forall z. E(x, z) -> B(z)",
    "R(x) & (forall y. dist(x, y) > 1 | !B(y))",
    // far-witness rewrites (single dist> link to the outer scope)
    "R(x) & exists z. B(z) & dist(z, x) > 2",
    "exists z. dist(z, x) > 3",
    // closed subformulas (evaluated during localization)
    "B(x) & exists u v. E(u, v) & R(u)",
    "R(x) & exists u v. B(u) & B(v) & dist(u, v) > 3",
    // equalities and mixed shapes
    "B(x) & x = y",
    "exists z. E(x, z) & E(z, y) & B(z) & x != y",
];

fn check_query(structure: &Structure, src: &str, mode: SkipMode) {
    let q = parse_query(structure.signature(), src).expect("corpus parses");
    let oracle = answers_naive(structure, &q);
    let oracle_set: BTreeSet<Vec<Node>> = oracle.iter().cloned().collect();

    let engine = match Engine::build_with(structure, &q, Epsilon::new(0.5), mode) {
        Ok(e) => e,
        Err(e) => panic!("`{src}` failed to build: {e}"),
    };

    // Thm 2.5
    assert_eq!(engine.count(), oracle.len() as u64, "`{src}` count");

    // Thm 2.7: set equality and no duplicates
    let got: Vec<Vec<Node>> = engine.enumerate().collect();
    let got_set: BTreeSet<Vec<Node>> = got.iter().cloned().collect();
    assert_eq!(got.len(), got_set.len(), "`{src}` emitted duplicates");
    assert_eq!(got_set, oracle_set, "`{src}` answer set");

    // Thm 2.6: positives and a sample of negatives
    for t in oracle.iter().take(50) {
        assert!(engine.test(t), "`{src}` test should accept {t:?}");
    }
    let n = structure.cardinality();
    let k = q.arity();
    if k > 0 {
        let mut misses = 0;
        'outer: for i in 0..n {
            for j in 0..n {
                let t: Vec<Node> = (0..k).map(|p| Node(((i + j * p) % n) as u32)).collect();
                if !oracle_set.contains(&t) {
                    assert!(!engine.test(&t), "`{src}` test should reject {t:?}");
                    misses += 1;
                    if misses > 40 {
                        break 'outer;
                    }
                }
            }
        }
    }
}

#[test]
fn corpus_on_bounded_degree() {
    for seed in [11u64, 12] {
        let s = ColoredGraphSpec::balanced(26, DegreeClass::Bounded(3)).generate(seed);
        for src in CORPUS {
            check_query(&s, src, SkipMode::Eager);
        }
    }
}

#[test]
fn corpus_lazy_skip_mode() {
    let s = ColoredGraphSpec::balanced(26, DegreeClass::Bounded(3)).generate(13);
    for src in CORPUS {
        check_query(&s, src, SkipMode::Lazy);
    }
}

#[test]
fn corpus_forced_eager_skip_mode() {
    // unconditionally builds the paper's E_k + skip table
    let s = ColoredGraphSpec::balanced(22, DegreeClass::Bounded(3)).generate(19);
    for src in CORPUS {
        check_query(&s, src, SkipMode::EagerForce);
    }
}

#[test]
fn corpus_on_higher_degree() {
    // Degree well above the threshold that forces actual skipping. Only the
    // low-radius/low-arity fragment: at degree 7 on 30 nodes every
    // neighborhood of radius ≥ 2 covers the whole structure, so the
    // d^{h(q)} factors of the reduction degenerate to n^k (the paper's
    // "hidden constants" — see EXPERIMENTS.md); the remaining corpus
    // entries are exercised on genuinely low-degree instances above.
    let s = ColoredGraphSpec::balanced(30, DegreeClass::Bounded(7)).generate(14);
    for src in [
        "B(x) & R(y) & !E(x, y)",
        "B(x) & !R(x)",
        "(B(x) | G(x)) & R(y) & !E(x, y)",
        "B(x) & R(y) & x != y",
        "exists z. E(x, z) & R(z)",
        "forall z. E(x, z) -> B(z)",
        "B(x) & exists u v. E(u, v) & R(u)",
        "B(x) & x = y",
    ] {
        check_query(&s, src, SkipMode::Eager);
    }
}

#[test]
fn corpus_on_sparse_colors() {
    let spec = ColoredGraphSpec {
        n: 32,
        degree: DegreeClass::Bounded(4),
        blue: 0.08,
        red: 0.85,
        green: 0.02,
    };
    let s = spec.generate(15);
    for src in CORPUS {
        check_query(&s, src, SkipMode::Eager);
    }
}

#[test]
fn sentences_against_oracle() {
    let sentences = [
        "exists x y. E(x, y) & B(x) & R(y)",
        "exists x. B(x) & R(x) & G(x)",
        "exists x y. B(x) & B(y) & dist(x, y) > 4",
        "exists x y z. B(x) & B(y) & B(z) & dist(x, y) > 2 & dist(y, z) > 2 & dist(x, z) > 2",
        "forall x. B(x) -> (exists y. dist(y, x) <= 1 & E(x, y))",
    ];
    for seed in [21u64, 22, 23] {
        let s = ColoredGraphSpec::balanced(24, DegreeClass::Bounded(3)).generate(seed);
        for src in sentences {
            let q = parse_query(s.signature(), src).expect("parses");
            let expected = model_check_naive(&s, &q);
            assert_eq!(
                Engine::model_check(&s, &q).expect("localizable"),
                expected,
                "`{src}` seed {seed}"
            );
        }
    }
}

#[test]
fn padded_clique_pipeline() {
    // the §2.3 class: low degree but not nowhere dense
    use lowdeg_storage::Signature;
    use std::sync::Arc;
    let base = lowdeg_gen::padded_clique(5, 40);
    // recolor into the colored signature: clique nodes blue, padding red
    let sig = Arc::new(Signature::new(&[("E", 2), ("B", 1), ("R", 1), ("G", 1)]));
    let e = sig.rel("E").unwrap();
    let b = sig.rel("B").unwrap();
    let r = sig.rel("R").unwrap();
    let mut builder = Structure::builder(sig, 40);
    let base_e = base.signature().rel("E").unwrap();
    for t in base.relation(base_e).iter() {
        builder.fact(e, t).unwrap();
    }
    for i in 0..40u32 {
        builder.fact(if i < 5 { b } else { r }, &[Node(i)]).unwrap();
    }
    let s = builder.finish().unwrap();
    for src in [
        "B(x) & R(y) & !E(x, y)",
        "B(x) & B(y) & !E(x, y)",
        "exists z. E(x, z) & E(z, y)",
    ] {
        check_query(&s, src, SkipMode::Eager);
    }
}
