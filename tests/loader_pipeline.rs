//! Integration: text-format databases through the full pipeline, plus
//! serialization round-trips of generated workloads.

use lowdeg_core::Engine;
use lowdeg_gen::{social_network, ColoredGraphSpec, DegreeClass, SocialSpec};
use lowdeg_index::Epsilon;
use lowdeg_logic::parse_query;
use lowdeg_storage::{parse_structure, write_structure, Node};

#[test]
fn handwritten_database_end_to_end() {
    let db = parse_structure(
        "
        # two blue-red components and an isolated red node
        domain 7
        rel E 2
        rel B 1
        rel R 1
        E 0 1
        E 1 0
        E 2 3
        E 3 2
        B 0
        B 2
        R 1
        R 3
        R 6
        ",
    )
    .unwrap();
    let q = parse_query(db.signature(), "B(x) & R(y) & !E(x, y)").unwrap();
    let engine = Engine::build(&db, &q, Epsilon::new(0.5)).unwrap();
    // blues {0,2} × reds {1,3,6} minus edges (0,1),(2,3) → 4 answers
    assert_eq!(engine.count(), 4);
    let answers: Vec<Vec<Node>> = engine.enumerate().collect();
    assert_eq!(answers.len(), 4);
    assert!(engine.test(&[Node(0), Node(3)]));
    assert!(engine.test(&[Node(0), Node(6)]));
    assert!(!engine.test(&[Node(0), Node(1)]));
    assert!(!engine.test(&[Node(1), Node(3)])); // 1 is not blue
}

#[test]
fn generated_workloads_roundtrip_through_text() {
    let colored = ColoredGraphSpec::balanced(50, DegreeClass::Bounded(4)).generate(5);
    let text = write_structure(&colored);
    let back = parse_structure(&text).unwrap();
    assert_eq!(colored, back);

    let social = social_network(
        &SocialSpec {
            people: 60,
            ..SocialSpec::default()
        },
        6,
    );
    let text = write_structure(&social);
    let back = parse_structure(&text).unwrap();
    assert_eq!(social, back);
}

#[test]
fn parsed_database_equals_generated_pipeline_results() {
    let original = ColoredGraphSpec::balanced(30, DegreeClass::Bounded(3)).generate(9);
    let reparsed = parse_structure(&write_structure(&original)).unwrap();
    let q = parse_query(original.signature(), "exists z. E(x, z) & R(z)").unwrap();
    let e1 = Engine::build(&original, &q, Epsilon::new(0.5)).unwrap();
    // the reparsed structure has its own signature instance but equal content
    let q2 = parse_query(reparsed.signature(), "exists z. E(x, z) & R(z)").unwrap();
    let e2 = Engine::build(&reparsed, &q2, Epsilon::new(0.5)).unwrap();
    assert_eq!(e1.count(), e2.count());
    let a1: Vec<Vec<Node>> = e1.enumerate().collect();
    let a2: Vec<Vec<Node>> = e2.enumerate().collect();
    let s1: std::collections::BTreeSet<_> = a1.into_iter().collect();
    let s2: std::collections::BTreeSet<_> = a2.into_iter().collect();
    assert_eq!(s1, s2);
}
