//! Offline stand-in for the subset of the `proptest` 1.x API this
//! workspace uses.
//!
//! The build environment cannot reach crates.io, so the real `proptest`
//! is unavailable. This crate re-implements the pieces the test suites
//! use — the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `boxed`, range and tuple and collection strategies, `prop_oneof!`,
//! `Just`, `any`, and the [`proptest!`] macro with
//! `ProptestConfig::with_cases` — as a plain seeded random tester.
//!
//! Differences from upstream, deliberate and documented:
//!
//! * **No shrinking.** A failing case panics with the generated inputs'
//!   `Debug` form instead of a minimized counterexample. (The
//!   `lowdeg-conformance` harness owns domain-aware shrinking for the
//!   pipeline suites, which is where shrinking pays off.)
//! * **Deterministic seeds.** Cases derive from a fixed per-test seed, so
//!   CI runs are reproducible; set `PROPTEST_SEED` to explore new streams.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::ops::Range;
use std::sync::Arc;

pub mod test_runner {
    //! Runner configuration (stand-in for `proptest::test_runner`).

    /// How many random cases a `proptest!` test executes.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Error type test bodies may `return Err(..)` with; converted to a
    /// panic by the runner.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// A failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl<E: std::error::Error> From<E> for TestCaseError {
        fn from(e: E) -> Self {
            TestCaseError(e.to_string())
        }
    }
}

/// The random source handed to strategies: xoshiro256++ seeded per test.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeded construction (SplitMix64 expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next().max(1)],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values (stand-in for `proptest::strategy::Strategy`;
/// no shrink tree, values are generated directly).
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `f` (bounded retries, matching the
    /// spirit of upstream's rejection handling).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Type-erase (cheaply clonable, like upstream's `BoxedStrategy`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Arc::new(self),
        }
    }
}

/// Object-safe view of a strategy.
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A clonable type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Arc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.whence
        );
    }
}

/// Always-the-same-value strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Full-range strategy for a type (stand-in for `proptest::arbitrary`).
pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types `any::<T>()` supports.
pub trait ArbitraryValue: Debug {
    /// Draw a uniform sample over the full value range.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

pub mod collection {
    //! Collection strategies (stand-in for `proptest::collection`).

    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact `usize` or a `Range`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min
                + if span == 0 {
                    0
                } else {
                    rng.below(span) as usize
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod strategy {
    //! Strategy combinators (stand-in for `proptest::strategy`).

    use super::TestRng;
    pub use super::{BoxedStrategy, Just, Map, Strategy};
    use std::fmt::Debug;

    /// Uniform choice among alternatives (upstream weights options; the
    /// suites here only use unweighted unions).
    pub struct Union<S> {
        options: Vec<S>,
    }

    impl<S> Union<S> {
        /// Build from the alternatives (must be non-empty).
        pub fn new(options: impl IntoIterator<Item = S>) -> Self {
            let options: Vec<S> = options.into_iter().collect();
            assert!(!options.is_empty(), "Union of zero strategies");
            Union { options }
        }
    }

    impl<S: Strategy> Strategy for Union<S>
    where
        S::Value: Debug,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::strategy::Union;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, Strategy,
    };
}

/// The per-test seed: fixed default, overridable via `PROPTEST_SEED`.
pub fn base_seed(test_name: &str) -> u64 {
    let env = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0xC0FF_EE00_D15E_A5E5);
    // FNV-1a over the test name, mixed with the base seed
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ env
}

/// `proptest!` stand-in: runs each test body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`] — one plain `#[test]` per entry.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let seed = $crate::base_seed(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::seed_from_u64(seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                // render inputs up front: the body takes them by value
                let rendered_inputs = format!("{:#?}", ($(&$arg,)+));
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        Ok(())
                    })();
                if let Err(e) = result {
                    panic!(
                        "proptest case {case} failed: {msg}\ninputs: {inputs}",
                        case = case,
                        msg = e.0,
                        inputs = rendered_inputs
                    );
                }
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

/// `prop_assert!` stand-in: panics with the generated inputs in scope.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert_eq!` stand-in.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l, r, format!($($fmt)*)
            )));
        }
    }};
}

/// `prop_assert_ne!` stand-in.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
}

/// `prop_oneof!` stand-in: uniform union of boxed alternatives.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 0u32..10, pair in (0usize..5, any::<bool>())) {
            prop_assert!(x < 10);
            prop_assert!(pair.0 < 5, "got {}", pair.0);
        }

        #[test]
        fn vec_and_oneof(v in prop::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 0..8)) {
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2));
        }

        #[test]
        fn flat_map_dependent(pair in (2usize..6).prop_flat_map(|n| (Just(n), 0..n))) {
            prop_assert!(pair.1 < pair.0);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::TestRng::seed_from_u64(9);
        let mut b = crate::TestRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
