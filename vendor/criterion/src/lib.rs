//! Offline stand-in for the subset of the `criterion` 0.5 API the bench
//! suite uses: `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! measurement_time, bench_function, bench_with_input, finish}`,
//! `BenchmarkId::new`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! The real criterion cannot be fetched in this build environment. This
//! stand-in genuinely runs and times every benchmark closure (a short
//! warm-up, then `sample_size` timed samples) and prints median / mean
//! per-iteration times, so `cargo bench` remains useful for eyeballing
//! regressions — it just lacks criterion's statistics, HTML reports and
//! saved baselines.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark registry handle.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.default_sample_size;
        eprintln!("\n== group: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size,
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.default_sample_size, Duration::from_secs(1), f);
        self
    }
}

/// A named group sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total time budget per benchmark (approximate in this stand-in).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Throughput annotation — accepted and ignored.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run a benchmark identified by `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.sample_size, self.measurement_time, f);
        self
    }

    /// Run a benchmark that receives an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.sample_size, self.measurement_time, |b| {
            f(b, input)
        });
        self
    }

    /// Close the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, budget: Duration, mut f: F) {
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    // calibration: find an iteration count that takes ≥ ~1ms per sample,
    // without exceeding the overall budget
    let calibration_start = Instant::now();
    loop {
        b.elapsed = Duration::ZERO;
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1)
            || calibration_start.elapsed() > budget / 4
            || b.iters >= 1 << 20
        {
            break;
        }
        b.iters *= 4;
    }
    let mut per_iter: Vec<Duration> = Vec::with_capacity(samples);
    let run_start = Instant::now();
    for _ in 0..samples {
        b.elapsed = Duration::ZERO;
        f(&mut b);
        per_iter.push(b.elapsed / b.iters.max(1) as u32);
        if run_start.elapsed() > budget {
            break;
        }
    }
    per_iter.sort_unstable();
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<Duration>() / per_iter.len() as u32;
    eprintln!(
        "bench {label:<48} median {median:>12?}  mean {mean:>12?}  ({} samples x {} iters)",
        per_iter.len(),
        b.iters
    );
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it `iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A parameterized benchmark identifier.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

/// Conversion into a display label (accepts `BenchmarkId` and strings).
pub trait IntoBenchmarkId {
    /// The display label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Throughput annotation (accepted, ignored).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Define a benchmark group function (API parity with criterion).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_and_groups_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3).measurement_time(Duration::from_millis(50));
        let mut ran = 0u64;
        g.bench_with_input(BenchmarkId::new("inc", 1), &5u64, |b, &x| {
            b.iter(|| {
                ran += 1;
                x + 1
            })
        });
        g.finish();
        assert!(ran > 0);
    }
}
