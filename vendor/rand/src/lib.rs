//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool,
//! fill}`, and the `StdRng`/`SmallRng` types.
//!
//! The build environment has no access to crates.io, so the real `rand`
//! cannot be fetched; every generator in the workspace only needs a
//! seeded, deterministic, reasonably well-mixed stream, which the
//! xoshiro256++ generator below provides. Streams differ from upstream
//! `rand`, which is fine: nothing in the workspace asserts on exact
//! generated values, only on seed-determinism and statistical shape.

#![forbid(unsafe_code)]

use core::ops::Range;

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Seed type (fixed to 32 bytes for both provided RNGs).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded via SplitMix64 exactly like the
    /// real `rand` does for xoshiro-family generators.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }

    /// Construct from OS entropy. Offline stand-in: a fixed seed — the
    /// workspace never relies on true entropy.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x9E37_79B9_7F4A_7C15)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Core generator interface (subset of `rand::RngCore` + `rand::Rng`,
/// merged: the workspace only ever imports `Rng`).
pub trait Rng {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
    }

    /// A uniform sample of `T` over its full value range.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from `range` (half-open). Panics on empty ranges,
    /// matching `rand`.
    fn gen_range<T: UniformSampled>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// A Bernoulli sample. Panics unless `0 ≤ p ≤ 1`, matching `rand`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool needs 0 <= p <= 1, got {p}"
        );
        f64::sample(self) < p
    }
}

/// Types samplable uniformly over their whole range (stand-in for
/// `rand::distributions::Standard`).
pub trait Standard {
    /// Draw one sample.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types samplable from a half-open range (stand-in for
/// `rand::distributions::uniform::SampleUniform`).
pub trait UniformSampled: Sized {
    /// Draw one sample from `range`.
    fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformSampled for $t {
            fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as u128) - (range.start as u128);
                // Lemire-style widening multiply keeps bias < 2^-64.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as u128;
                (range.start as u128 + hi) as $t
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty : $u:ty),*) => {$(
        impl UniformSampled for $t {
            fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let hi = (rng.next_u64() as u128 * span) >> 64;
                (range.start as i128 + hi as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl UniformSampled for f64 {
    fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        range.start + f64::sample(rng) * (range.end - range.start)
    }
}

impl UniformSampled for f32 {
    fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        range.start + f32::sample(rng) * (range.end - range.start)
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ core shared by both RNG types.
    #[derive(Clone, Debug)]
    pub struct Xoshiro256 {
        s: [u64; 4],
    }

    impl Xoshiro256 {
        fn next(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn from_seed_bytes(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // avoid the all-zero state
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            Xoshiro256 { s }
        }
    }

    /// Stand-in for `rand::rngs::StdRng` (seeded, deterministic).
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];
        fn from_seed(seed: [u8; 32]) -> Self {
            StdRng(Xoshiro256::from_seed_bytes(seed))
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    /// Stand-in for `rand::rngs::SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];
        fn from_seed(seed: [u8; 32]) -> Self {
            SmallRng(Xoshiro256::from_seed_bytes(seed))
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }
}

/// `rand::thread_rng` stand-in: a fresh deterministic generator (no
/// thread-local state; the workspace only uses explicit seeding, this
/// exists so exploratory code compiles).
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::seed_from_u64(0x5DEE_CE66_D0BB_CAFE)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn bool_probabilities_sane() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
