//! Labeled data end to end: a small team directory keyed by *names*, not
//! node ids.
//!
//! Demonstrates [`lowdeg_storage::LabeledBuilder`] — labels are interned on
//! first sight, answers are rendered back through the mapping — on a
//! reviewer-assignment query: find `(engineer, reviewer)` pairs where the
//! reviewer is senior, the engineer is not, and they do **not** share a
//! team channel (fresh eyes).
//!
//! ```bash
//! cargo run --release -p lowdeg-bench --example team_directory
//! ```

use lowdeg_core::Engine;
use lowdeg_index::Epsilon;
use lowdeg_logic::parse_query;
use lowdeg_storage::{LabeledBuilder, Signature};
use std::sync::Arc;

fn main() {
    let sig = Arc::new(Signature::new(&[
        ("Channel", 2),
        ("Senior", 1),
        ("Junior", 1),
    ]));
    let mut b = LabeledBuilder::new(sig);

    // shared team channels (symmetric)
    for (a, c) in [
        ("ana", "bo"),
        ("bo", "chen"),
        ("chen", "dara"),
        ("dara", "emil"),
        ("ana", "chen"),
        ("fay", "emil"),
    ] {
        b.undirected("Channel", a, c).expect("valid fact");
    }
    for senior in ["ana", "dara", "fay"] {
        b.fact("Senior", &[senior]).expect("valid fact");
    }
    for junior in ["bo", "chen", "emil", "gus"] {
        b.fact("Junior", &[junior]).expect("valid fact");
    }
    let directory = b.finish().expect("non-empty");

    let db = directory.structure();
    println!(
        "directory: {} people, degree {}",
        db.cardinality(),
        db.degree()
    );

    let q = parse_query(db.signature(), "Junior(x) & Senior(y) & !Channel(x, y)")
        .expect("well-formed query");
    let engine = Engine::build(db, &q, Epsilon::new(0.5)).expect("localizable");

    println!("fresh-eyes review pairs: {}", engine.count());
    for t in engine.enumerate() {
        let named = directory.render(&t);
        println!("  {} ← reviewed by {}", named[0], named[1]);
        assert!(engine.test(&t));
    }

    // membership by name
    let (gus, ana) = (
        directory.node("gus").expect("known"),
        directory.node("ana").expect("known"),
    );
    println!("gus ← ana possible: {}", engine.test(&[gus, ana]));
}
