//! Quickstart: load a database, write a first-order query, and run all
//! three of the paper's tasks — counting, testing, constant-delay
//! enumeration.
//!
//! ```bash
//! cargo run --release -p lowdeg-bench --example quickstart
//! ```

use lowdeg_core::Engine;
use lowdeg_index::Epsilon;
use lowdeg_logic::parse_query;
use lowdeg_storage::{parse_structure, Node};

fn main() {
    // A small colored graph in the plain-text format: a path of six nodes,
    // blues on the left, reds on the right, plus one blue-red edge.
    let db = parse_structure(
        "
        domain 6
        rel E 2
        rel B 1
        rel R 1
        E 0 1
        E 1 0
        E 2 3
        E 3 2
        B 0
        B 2
        R 3
        R 4
        R 5
        ",
    )
    .expect("well-formed database");

    println!(
        "database: {} nodes, degree {}",
        db.cardinality(),
        db.degree()
    );

    // The paper's running example (Example 2.3): blue-red pairs with no
    // edge between them.
    let q = parse_query(db.signature(), "B(x) & R(y) & !E(x, y)").expect("well-formed query");

    // One pseudo-linear preprocessing pass powers everything else.
    let engine = Engine::build(&db, &q, Epsilon::new(0.5)).expect("localizable query");

    // Theorem 2.5: counting in pseudo-linear time.
    println!("count: {}", engine.count());

    // Theorem 2.6: constant-time membership tests.
    for (a, b) in [(0u32, 4u32), (2, 3), (2, 4)] {
        println!("test ({a}, {b}): {}", engine.test(&[Node(a), Node(b)]));
    }

    // Theorem 2.7: constant-delay enumeration.
    println!("answers:");
    for t in engine.enumerate() {
        println!("  ({}, {})", t[0], t[1]);
    }

    // Sentences go through Theorem 2.4's model checker directly.
    let sentence = parse_query(db.signature(), "exists x y. B(x) & R(y) & dist(x, y) > 2")
        .expect("well-formed sentence");
    println!(
        "far blue-red pair exists: {}",
        Engine::model_check(&db, &sentence).expect("localizable sentence")
    );
}
