//! Social-network scenario: mentorship matching over a low-degree "knows"
//! graph.
//!
//! People know a bounded number of other people, so social networks are a
//! natural low-degree class — exactly the setting where the paper's
//! pipeline shines. Three workloads:
//!
//! 1. *trusted members*: people none of whose acquaintances are suspended
//!    (a universally quantified query, localized by duality);
//! 2. *mentorship pairs*: newbie × moderator pairs who do **not** know each
//!    other — the paper's running-example shape at social scale, counted
//!    and enumerated with constant delay;
//! 3. *coverage check*: a basic-local sentence — are there three moderators
//!    pairwise more than 4 hops apart?
//!
//! ```bash
//! cargo run --release -p lowdeg-bench --example social_network
//! ```

use lowdeg_core::naive::DelayRecorder;
use lowdeg_core::Engine;
use lowdeg_gen::{social_network, SocialSpec};
use lowdeg_index::Epsilon;
use lowdeg_logic::parse_query;
use std::time::Instant;

fn main() {
    let spec = SocialSpec {
        people: 5_000,
        max_friends: 6,
        moderator_rate: 0.04,
        newbie_rate: 0.25,
        suspended_rate: 0.03,
    };
    let db = social_network(&spec, 42);
    println!(
        "network: {} people, max acquaintance degree {}",
        db.cardinality(),
        db.degree()
    );
    let eps = Epsilon::new(0.5);

    // 1. trusted members: ∀z (Knows(x,z) → ¬Suspended(z))
    let trusted = parse_query(db.signature(), "forall z. Knows(x, z) -> !Suspended(z)")
        .expect("well-formed query");
    let t0 = Instant::now();
    let engine = Engine::build(&db, &trusted, eps).expect("localizable");
    println!(
        "trusted members: {} (preprocessing {:?})",
        engine.count(),
        t0.elapsed()
    );

    // 2. mentorship pairs: Newbie(x) ∧ Moderator(y) ∧ ¬Knows(x, y)
    let mentorship = parse_query(db.signature(), "Newbie(x) & Moderator(y) & !Knows(x, y)")
        .expect("well-formed query");
    let t0 = Instant::now();
    let engine = Engine::build(&db, &mentorship, eps).expect("localizable");
    let prep = t0.elapsed();
    let (pairs, delays) = DelayRecorder::record(engine.enumerate());
    println!(
        "mentorship pairs: {} (preprocessing {prep:?}, max delay {:?}, mean delay {:?})",
        pairs.len(),
        delays.max(),
        delays.mean()
    );
    assert_eq!(pairs.len() as u64, engine.count());
    if let Some(first) = pairs.first() {
        println!("  e.g. newbie {} ↔ moderator {}", first[0], first[1]);
        assert!(engine.test(first));
    }

    // 3. coverage: three moderators pairwise > 4 hops apart
    let coverage = parse_query(
        db.signature(),
        "exists u v w. Moderator(u) & Moderator(v) & Moderator(w) \
         & dist(u, v) > 4 & dist(v, w) > 4 & dist(u, w) > 4",
    )
    .expect("well-formed sentence");
    let t0 = Instant::now();
    let spread = Engine::model_check(&db, &coverage).expect("localizable sentence");
    println!(
        "three pairwise-distant moderators exist: {spread} (checked in {:?})",
        t0.elapsed()
    );
}
