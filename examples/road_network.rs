//! Road-network scenario: facility placement on a grid.
//!
//! Grid-like road networks have degree ≤ 4 — a bounded-degree (hence
//! low-degree) class. We mark some intersections as depots (blue) and some
//! as customers (red), then ask placement questions that mix distance
//! guards with colors:
//!
//! * *underserved customers*: customers with no depot within 2 hops
//!   (a universally quantified distance query);
//! * *independent depot pairs*: depot pairs more than 4 hops apart —
//!   enumerated with constant delay;
//! * *expansion feasibility*: a scattered sentence — do three pairwise-far
//!   depots already exist?
//!
//! ```bash
//! cargo run --release -p lowdeg-bench --example road_network
//! ```

use lowdeg_core::Engine;
use lowdeg_gen::grid_graph;
use lowdeg_index::Epsilon;
use lowdeg_logic::parse_query;
use lowdeg_storage::{Node, Signature, Structure};
use std::sync::Arc;

/// Build a `w × h` road grid with depots every 7th node and customers every
/// 3rd node.
fn build_city(w: usize, h: usize) -> Structure {
    let grid = grid_graph(w, h);
    let sig = Arc::new(Signature::new(&[("E", 2), ("B", 1), ("R", 1)]));
    let e = sig.rel("E").expect("E");
    let b = sig.rel("B").expect("B");
    let r = sig.rel("R").expect("R");
    let mut builder = Structure::builder(sig, grid.cardinality());
    let grid_e = grid.signature().rel("E").expect("grid edge");
    for t in grid.relation(grid_e).iter() {
        builder.fact(e, t).expect("in range");
    }
    for i in 0..grid.cardinality() {
        if i % 7 == 0 {
            builder.fact(b, &[Node(i as u32)]).expect("in range");
        }
        if i % 3 == 1 {
            builder.fact(r, &[Node(i as u32)]).expect("in range");
        }
    }
    builder.finish().expect("non-empty")
}

fn main() {
    let db = build_city(14, 10);
    println!(
        "road grid: {} intersections, degree {}",
        db.cardinality(),
        db.degree()
    );
    let eps = Epsilon::new(0.5);

    // underserved customers: R(x) ∧ ∀y (dist(x,y) ≤ 2 → ¬B(y))
    let underserved = parse_query(db.signature(), "R(x) & (forall y. dist(x, y) > 2 | !B(y))")
        .expect("well-formed query");
    let engine = Engine::build(&db, &underserved, eps).expect("localizable");
    println!("underserved customers: {}", engine.count());
    let sample: Vec<_> = engine.enumerate().take(5).collect();
    for t in &sample {
        println!("  intersection {}", t[0]);
        assert!(engine.test(t));
    }

    // independent depot pairs: B(x) ∧ B(y) ∧ dist(x,y) > 4
    let independent =
        parse_query(db.signature(), "B(x) & B(y) & dist(x, y) > 4").expect("well-formed query");
    let engine = Engine::build(&db, &independent, eps).expect("localizable");
    let pairs: Vec<_> = engine.enumerate().collect();
    println!(
        "independent depot pairs: {} (count agrees: {})",
        pairs.len(),
        pairs.len() as u64 == engine.count()
    );

    // expansion feasibility: three pairwise-far depots
    let feasible = parse_query(
        db.signature(),
        "exists u v w. B(u) & B(v) & B(w) & dist(u, v) > 6 & dist(v, w) > 6 & dist(u, w) > 6",
    )
    .expect("well-formed sentence");
    println!(
        "three pairwise-far depots exist: {}",
        Engine::model_check(&db, &feasible).expect("localizable sentence")
    );
}
