//! Delay profile: watch the constant-delay guarantee materialize.
//!
//! Runs the running-example query on growing databases and prints, for the
//! skip-based enumerator vs. the generate-and-test baseline, the maximum
//! and p99 inter-output delays. The paper predicts the skip enumerator's
//! delay stays flat as `n` grows while the baseline's worst-case delay
//! grows with the run lengths of false hits.
//!
//! ```bash
//! cargo run --release -p lowdeg-bench --example delay_profile
//! ```

use lowdeg_core::naive::{DelayRecorder, GenerateAndTest};
use lowdeg_core::Engine;
use lowdeg_gen::{ColoredGraphSpec, DegreeClass};
use lowdeg_index::Epsilon;
use lowdeg_logic::parse_query;
use std::time::Instant;

fn main() {
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "n", "prep", "skip max", "skip p99", "naive max", "naive p99"
    );
    for exp in 9..=13 {
        let n = 1usize << exp;
        let db = ColoredGraphSpec::balanced(n, DegreeClass::Bounded(6)).generate(7);
        let q = parse_query(db.signature(), "B(x) & R(y) & !E(x, y)").expect("well-formed query");

        let t0 = Instant::now();
        let engine = Engine::build(&db, &q, Epsilon::new(0.5)).expect("localizable");
        let prep = t0.elapsed();

        let (skip_answers, skip_delays) = DelayRecorder::record(engine.enumerate());
        let (naive_answers, naive_delays) = DelayRecorder::record(GenerateAndTest::new(&db, &q));
        assert_eq!(skip_answers.len(), naive_answers.len());

        println!(
            "{:>8} {:>12?} {:>12?} {:>12?} {:>12?} {:>12?}",
            n,
            prep,
            skip_delays.max(),
            skip_delays.quantile(0.99),
            naive_delays.max(),
            naive_delays.quantile(0.99),
        );
    }
}
