//! Importing an external graph dataset: the SNAP-style edge-list path.
//!
//! Real graph datasets usually ship as `u v` edge lists. This example
//! writes one to disk (a synthetic collaboration network), re-imports it
//! with [`lowdeg_storage::parse_edge_list`], derives colors from graph
//! statistics (hubs vs. leaves), and runs the pipeline on the result.
//!
//! ```bash
//! cargo run --release -p lowdeg-bench --example edge_list_import
//! ```

use lowdeg_core::Engine;
use lowdeg_gen::bounded_degree_graph;
use lowdeg_index::Epsilon;
use lowdeg_logic::parse_query;
use lowdeg_storage::{parse_edge_list, Node, Signature, Structure};
use std::fmt::Write as _;
use std::sync::Arc;

fn main() {
    // 1. write a synthetic "collaboration network" as an edge list
    let raw = bounded_degree_graph(2000, 5, 99);
    let e_raw = raw.signature().rel("E").expect("E");
    let mut text = String::from("# synthetic collaboration network\n");
    for t in raw.relation(e_raw).iter() {
        if t[0] < t[1] {
            let _ = writeln!(text, "{} {}", t[0], t[1]);
        }
    }
    let path = std::env::temp_dir().join("lowdeg_collab.edges");
    std::fs::write(&path, &text).expect("writable temp dir");
    println!("wrote {} ({} bytes)", path.display(), text.len());

    // 2. import it back
    let imported = parse_edge_list(&std::fs::read_to_string(&path).expect("readable"))
        .expect("well-formed edge list");
    println!(
        "imported: {} nodes, degree {}",
        imported.cardinality(),
        imported.degree()
    );

    // 3. derive colors from the graph itself: B = "active" (degree ≥ 4),
    //    R = "newcomer" (degree ≤ 1)
    let sig = Arc::new(Signature::new(&[("E", 2), ("B", 1), ("R", 1)]));
    let e = sig.rel("E").expect("E");
    let b = sig.rel("B").expect("B");
    let r = sig.rel("R").expect("R");
    let mut builder = Structure::builder(sig, imported.cardinality());
    let imported_e = imported.signature().rel("E").expect("E");
    for t in imported.relation(imported_e).iter() {
        builder.fact(e, t).expect("in range");
    }
    let g = imported.gaifman();
    for v in imported.domain() {
        if g.degree(v) >= 4 {
            builder.fact(b, &[v]).expect("in range");
        }
        if g.degree(v) <= 1 {
            builder.fact(r, &[v]).expect("in range");
        }
    }
    let db = builder.finish().expect("non-empty");

    // 4. run the pipeline: "active people who could mentor a newcomer they
    //    don't already collaborate with"
    let q = parse_query(db.signature(), "B(x) & R(y) & !E(x, y)").expect("well-formed");
    let engine = Engine::build(&db, &q, Epsilon::new(0.5)).expect("localizable");
    println!("mentorship candidates: {}", engine.count());
    for t in engine.enumerate().take(3) {
        println!("  active {} ↔ newcomer {}", t[0], t[1]);
        assert!(engine.test(&t));
    }

    // 5. a sentence over the imported data: is the network spread out?
    let spread = parse_query(db.signature(), "exists u v. B(u) & B(v) & dist(u, v) > 6")
        .expect("well-formed");
    println!(
        "two active people more than 6 hops apart: {}",
        Engine::model_check(&db, &spread).expect("localizable")
    );

    // connected components of the collaboration graph, for flavor
    let (_, comps) = db.gaifman().components();
    println!("connected components: {comps}");
    let _ = Node(0);
}
